"""E10 — Lemma 3.1 / Appendix B: the four hashing regimes.

Hash relations attribute-wise onto grids (the HyperCube primitive) and
compare measured maximum bucket loads against:

1. the ``m/p`` expectation (Lemma B.1),
2. the ``O(m/p)`` matching bound (Lemma 3.1(2)),
3. the ``O(polylog * m/p)`` skew-free bound (Lemma 3.1(3)),
4. the ``O(m/min_i p_i)`` worst-case bound, tight by Example B.2.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.balls import (
    average_max_hash_load,
    hash_relation_loads,
    matching_hash_bound,
    skew_free_hash_threshold,
    worst_case_hash_bound,
)
from repro.data import matching_relation, single_value_relation, uniform_relation

M = 8192


@pytest.mark.parametrize("grid", [(64,), (8, 8), (4, 4, 4)])
def test_matching_regime(benchmark, grid):
    arity = len(grid)
    rel = matching_relation("R", M, 4 * M, arity=arity, seed=61)
    measured = benchmark(
        lambda: average_max_hash_load(rel, list(grid), trials=3, seed=0)
    )
    p = 1
    for share in grid:
        p *= share
    bound = matching_hash_bound(M, p)
    record(
        benchmark,
        "E10",
        regime="matching",
        grid=str(grid),
        measured=measured,
        expectation=M / p,
        bound_3m_over_p=bound.threshold,
    )
    assert measured <= bound.threshold
    assert measured >= M / p


@pytest.mark.parametrize("grid", [(8, 8), (4, 16)])
def test_skew_free_regime(benchmark, grid):
    rel = uniform_relation("R", M, 16 * M, seed=62)
    measured = benchmark(
        lambda: average_max_hash_load(rel, list(grid), trials=3, seed=0)
    )
    bound = skew_free_hash_threshold(M, list(grid))
    record(
        benchmark,
        "E10",
        regime="skew-free",
        grid=str(grid),
        measured=measured,
        polylog_bound=bound,
    )
    assert measured <= bound


def test_worst_case_regime_example_b2(benchmark):
    """Example B.2: all tuples share the first attribute — the load is
    m / p_2, exactly the Lemma 3.1(4) ceiling."""
    grid = (8, 8)
    rel = single_value_relation("R", M // 4, M, fixed_position=0, seed=63)
    measured = benchmark(lambda: average_max_hash_load(rel, list(grid), trials=3))
    m = rel.cardinality
    ceiling = worst_case_hash_bound(m, list(grid))
    record(
        benchmark,
        "E10",
        regime="worst-case",
        grid=str(grid),
        measured=measured,
        m_over_min_share=ceiling,
        m_over_p=m / 64,
    )
    # Tightness: the single pinned column forces ~m/8, far above m/64.
    assert measured >= 0.5 * ceiling / 3
    assert measured >= 3 * m / 64
    assert measured <= 3 * ceiling


def test_mean_load_is_m_over_p(benchmark):
    """Lemma B.1: expectation exactly m/p (over occupied + empty buckets)."""
    grid = (8, 8)
    rel = uniform_relation("R", M, 16 * M, seed=64)
    loads = benchmark(lambda: hash_relation_loads(rel, list(grid), seed=1))
    mean = sum(loads.values()) / 64
    record(benchmark, "E10", regime="mean", mean=mean, m_over_p=M / 64)
    assert abs(mean - M / 64) < 1e-9
