"""E4 — Corollary 3.2(ii): HyperCube with equal shares guarantees
``O(max_j M_j / p^{1/k})`` on *any* database, while a hash join can
degrade to ``Omega(m)``.

Runs the worst-case (single join value) instances for the join and the
triangle, comparing measured loads against the resilience guarantee.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.core import HashJoinAlgorithm, HyperCubeAlgorithm
from repro.data import single_value_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics


def _worst_join_db(m):
    return Database.from_relations(
        [
            single_value_relation("S1", m, 4 * m, seed=1),
            single_value_relation("S2", m, 4 * m, seed=2),
        ]
    )


def _worst_triangle_db(m):
    """All S1 tuples share x1 = 0 and all S3 tuples share x1 = 0."""
    return Database.from_relations(
        [
            single_value_relation("S1", m, 4 * m, fixed_position=0, seed=3),
            single_value_relation("S2", m, 4 * m, fixed_position=0, seed=4),
            single_value_relation("S3", m, 4 * m, fixed_position=1, seed=5),
        ]
    )


@pytest.mark.parametrize("p", [8, 27, 64])
def test_join_resilience(benchmark, p):
    m = 240
    query = simple_join_query()
    db = _worst_join_db(m)
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_equal_shares(query, p)
    result = benchmark(
        lambda: run_one_round(algo, db, p, compute_answers=False)
    )
    guarantee = algo.worst_case_load_bits(stats)
    record(
        benchmark,
        "E4",
        query="join",
        p=p,
        measured_bits=result.max_load_bits,
        guarantee_bits=guarantee,
        guarantee_tuples=m / p ** (1 / 3),
        measured_tuples=result.max_load_tuples,
    )
    assert result.max_load_bits <= 3 * guarantee


@pytest.mark.parametrize("p", [8, 27])
def test_triangle_resilience(benchmark, p):
    m = 200
    query = triangle_query()
    db = _worst_triangle_db(m)
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_equal_shares(query, p)
    result = benchmark(
        lambda: run_one_round(algo, db, p, compute_answers=False)
    )
    guarantee = algo.worst_case_load_bits(stats)
    record(
        benchmark,
        "E4",
        query="triangle",
        p=p,
        measured_bits=result.max_load_bits,
        guarantee_bits=guarantee,
    )
    # The guarantee is per relation; a server's total load sums over the
    # l = 3 atoms, plus hashing variance.
    assert result.max_load_bits <= 2 * query.num_atoms * guarantee


def test_hash_join_has_no_such_guarantee(benchmark):
    """The contrast: hash-join load grows linearly in m on skewed data."""
    query = simple_join_query()
    p = 27

    def run_pair():
        loads = {}
        for m in (60, 240):
            db = _worst_join_db(m)
            hash_result = run_one_round(
                HashJoinAlgorithm(query, p), db, p, compute_answers=False
            )
            cube_result = run_one_round(
                HyperCubeAlgorithm.with_equal_shares(query, p),
                db, p, compute_answers=False,
            )
            loads[m] = (hash_result.max_load_tuples, cube_result.max_load_tuples)
        return loads

    loads = benchmark(run_pair)
    record(
        benchmark,
        "E4",
        hash_m60=loads[60][0],
        hash_m240=loads[240][0],
        cube_m60=loads[60][1],
        cube_m240=loads[240][1],
    )
    # Hash join scales 1:1 with m (total collapse)...
    assert loads[240][0] == 4 * loads[60][0]
    # ...while the cube's load scales by m / p^(1/3) and stays far below.
    assert loads[240][1] < loads[240][0] / 2
